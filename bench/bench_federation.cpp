// Experiment E11 — concurrent federated fan-out vs sequential dispatch.
// Simulates an 8-hospital cohort with per-link delivery latency (the
// FaultInjector's delay model) and measures wall-clock per local-run step
// and per training round for both dispatch modes, plus degraded-mode
// behavior when one site is down. The paper's platform federates 40+
// hospitals; sequential dispatch scales wall-clock linearly with cohort
// size, concurrent dispatch with the slowest link.
//
// Experiment E12 — transport overhead: the same aggregation step over the
// in-process MessageBus vs real TCP sockets on loopback, with the network
// cost reported both ways: the simulated link model (messages x latency +
// bytes / bandwidth) next to the measured wall clock of the same traffic.

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/stopwatch.h"
#include "engine/table.h"
#include "federation/fault.h"
#include "federation/master.h"
#include "federation/training.h"
#include "federation/worker_steps.h"
#include "net/tcp_transport.h"

namespace {

using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;
using mip::federation::TransferData;
using mip::federation::WorkerContext;

constexpr int kWorkers = 8;
constexpr double kLinkDelayMs = 10.0;
constexpr int kSteps = 10;

void Setup(mip::federation::MasterNode* master) {
  for (int w = 0; w < kWorkers; ++w) {
    const std::string id = "h" + std::to_string(w);
    (void)master->AddWorker(id);
    Schema schema;
    (void)schema.AddField({"x", DataType::kFloat64});
    Table t = Table::Empty(schema);
    for (int r = 0; r < 100; ++r) {
      (void)t.AppendRow({Value::Double(w + r * 0.01)});
    }
    (void)master->LoadDataset(id, "cohort", std::move(t));
  }
  (void)master->functions()->Register(
      "stats",
      [](WorkerContext& ctx,
         const TransferData&) -> mip::Result<TransferData> {
        MIP_ASSIGN_OR_RETURN(Table t, ctx.db().GetTable("cohort"));
        double sum = 0, sum_sq = 0, n = 0;
        for (size_t r = 0; r < t.num_rows(); ++r) {
          const double x = t.At(r, 0).AsDouble();
          sum += x;
          sum_sq += x * x;
          n += 1;
        }
        TransferData out;
        out.PutScalar("sum", sum);
        out.PutScalar("sum_sq", sum_sq);
        out.PutScalar("n", n);
        return out;
      });
}

double RunSteps(mip::federation::MasterNode* master,
                const mip::federation::FanoutPolicy& policy) {
  auto session = master->StartSession({"cohort"});
  session.ValueOrDie().set_fanout_policy(policy);
  mip::Stopwatch sw;
  for (int s = 0; s < kSteps; ++s) {
    auto agg = session.ValueOrDie().LocalRunAndAggregate(
        "stats", TransferData(), mip::federation::AggregationMode::kPlain);
    if (!agg.ok()) {
      std::printf("step failed: %s\n", agg.status().ToString().c_str());
      return -1;
    }
  }
  return sw.ElapsedMillis() / kSteps;
}

/// Prints one transport's ledger with the simulated link model next to the
/// measured wall clock for the same traffic.
void PrintNetworkReport(const char* label, const mip::net::NetworkStats& stats,
                        double latency_ms, double bandwidth_mbps) {
  std::printf(
      "%-14s %8llu msgs %10llu bytes | simulated %8.1f ms | measured "
      "%8.1f ms (%.3f ms/rtt over %llu rtts)\n",
      label, static_cast<unsigned long long>(stats.messages),
      static_cast<unsigned long long>(stats.bytes),
      stats.SimulatedSeconds(latency_ms, bandwidth_mbps) * 1e3, stats.wall_ms,
      stats.MeanRoundTripMs(),
      static_cast<unsigned long long>(stats.round_trips));
}

/// E12: time `kSteps` stats.moments aggregation steps on an already wired
/// master (bus-backed or TCP-backed).
double RunMomentsSteps(mip::federation::MasterNode* master) {
  auto session = master->StartSession({"cohort"});
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    return -1;
  }
  TransferData args;
  args.PutString("dataset", "cohort");
  args.PutString("column", "y");
  mip::Stopwatch sw;
  for (int s = 0; s < kSteps; ++s) {
    auto agg = session.ValueOrDie().LocalRunAndAggregate(
        "stats.moments", args, mip::federation::AggregationMode::kPlain);
    if (!agg.ok()) {
      std::printf("step failed: %s\n", agg.status().ToString().c_str());
      return -1;
    }
  }
  return sw.ElapsedMillis() / kSteps;
}

}  // namespace

int main() {
  std::printf("=== E11: concurrent fan-out vs sequential dispatch ===\n");
  std::printf("%d workers, %.0f ms injected per-link delay, %d steps\n\n",
              kWorkers, kLinkDelayMs, kSteps);

  mip::federation::MasterNode master;
  Setup(&master);
  mip::federation::FaultInjector injector(20240807);
  mip::federation::FaultSpec link;
  link.delay_ms = kLinkDelayMs;
  link.jitter_ms = 2.0;
  for (int w = 0; w < kWorkers; ++w) {
    injector.SetEndpointFault("h" + std::to_string(w), link);
  }
  master.bus().set_fault_injector(&injector);

  mip::federation::FanoutPolicy sequential;
  sequential.max_concurrency = 1;
  mip::federation::FanoutPolicy concurrent;  // defaults: all lanes open

  const double seq_ms = RunSteps(&master, sequential);
  const double conc_ms = RunSteps(&master, concurrent);
  std::printf("sequential dispatch: %8.1f ms/step\n", seq_ms);
  std::printf("concurrent dispatch: %8.1f ms/step\n", conc_ms);
  std::printf("speedup:             %8.2fx (ideal %dx: wall-clock bound by "
              "slowest link)\n\n",
              seq_ms / conc_ms, kWorkers);

  // Network ledger for everything E11 sent, model vs reality: the simulated
  // column is the configured latency/bandwidth formula over the message and
  // byte counts, the measured column is the wall clock of the handler round
  // trips themselves (fault-injected transit delay is not the handler's).
  std::printf("network cost, simulated model vs measured wall clock:\n");
  PrintNetworkReport("bus (E11)", master.bus().stats(),
                     master.config().link_latency_ms,
                     master.config().link_bandwidth_mbps);
  std::printf("\n");

  // Degraded mode: one site down; quorum keeps the session alive.
  mip::federation::FaultSpec dead;
  dead.fail_first_n = 1 << 20;
  injector.SetEndpointFault("h3", dead);
  mip::federation::FanoutPolicy degraded;
  degraded.max_attempts = 2;
  degraded.retry_backoff_ms = 1.0;
  degraded.min_workers = kWorkers - 1;
  auto session = master.StartSession({"cohort"});
  session.ValueOrDie().set_fanout_policy(degraded);
  mip::Stopwatch sw;
  auto agg = session.ValueOrDie().LocalRunAndAggregate(
      "stats", TransferData(), mip::federation::AggregationMode::kPlain);
  std::printf("degraded cohort (1 of %d sites down, quorum %d): %s in "
              "%.1f ms, %zu excluded\n",
              kWorkers, kWorkers - 1,
              agg.ok() ? "completed" : agg.status().ToString().c_str(),
              sw.ElapsedMillis(),
              session.ValueOrDie().excluded_workers().size());

  // -------------------------------------------------------------------
  // E12: the same aggregation over the in-process bus vs real TCP
  // sockets on loopback — the cost of crossing a process boundary.
  std::printf("\n=== E12: transport overhead — in-process bus vs TCP "
              "loopback ===\n");
  auto functions = std::make_shared<mip::federation::LocalFunctionRegistry>();
  (void)mip::federation::RegisterPortableSteps(functions.get());
  constexpr size_t kRows = 200;
  const std::vector<double> true_weights = {1.5, -2.0};

  // Bus-backed federation (no injected faults: raw transport overhead).
  mip::federation::MasterNode bus_master;
  (void)mip::federation::RegisterPortableSteps(
      bus_master.functions().get());
  for (int w = 0; w < kWorkers; ++w) {
    const std::string id = "h" + std::to_string(w);
    (void)bus_master.AddWorker(id);
    (void)bus_master.LoadDataset(
        id, "cohort",
        mip::federation::MakeSyntheticLinregTable(1000 + w, kRows,
                                                  true_weights, 0.1));
  }
  const double bus_ms = RunMomentsSteps(&bus_master);

  // TCP-backed federation: the same workers behind a listening transport,
  // the master dialing them over loopback sockets.
  mip::net::TcpTransport server;
  std::vector<std::unique_ptr<mip::federation::WorkerNode>> tcp_workers;
  mip::federation::MasterNode tcp_master;
  mip::net::TcpTransport client;
  bool tcp_up = server.Listen(0).ok();
  for (int w = 0; tcp_up && w < kWorkers; ++w) {
    const std::string id = "h" + std::to_string(w);
    auto worker = std::make_unique<mip::federation::WorkerNode>(
        id, functions, 1000 + w);
    tcp_up = tcp_up &&
             worker
                 ->LoadDataset("cohort",
                               mip::federation::MakeSyntheticLinregTable(
                                   1000 + w, kRows, true_weights, 0.1))
                 .ok() &&
             worker->AttachToBus(&server).ok();
    client.AddPeer(id, "127.0.0.1", server.port());
    tcp_up = tcp_up && tcp_master.AddRemoteWorker(id, {"cohort"}).ok();
    tcp_workers.push_back(std::move(worker));
  }
  tcp_master.set_transport(&client);
  const double tcp_ms = tcp_up ? RunMomentsSteps(&tcp_master) : -1;

  std::printf("%d workers, %zu rows each, %d stats.moments steps\n\n",
              kWorkers, kRows, kSteps);
  std::printf("in-process bus:  %8.2f ms/step\n", bus_ms);
  std::printf("tcp loopback:    %8.2f ms/step (%.2fx the bus)\n\n",
              tcp_ms, bus_ms > 0 ? tcp_ms / bus_ms : 0.0);
  PrintNetworkReport("bus (E12)", bus_master.bus().stats(),
                     bus_master.config().link_latency_ms,
                     bus_master.config().link_bandwidth_mbps);
  PrintNetworkReport("tcp (E12)", client.stats(),
                     tcp_master.config().link_latency_ms,
                     tcp_master.config().link_bandwidth_mbps);
  client.Shutdown();
  server.Shutdown();

  std::printf("\nShape vs paper: sequential wall-clock grows linearly with "
              "cohort size;\nconcurrent dispatch stays flat at the slowest "
              "link, and a failed hospital\ncosts one retry budget instead "
              "of the whole study. Crossing the process\nboundary adds "
              "framing + syscall overhead per round trip — the deployment "
              "tax\nthe simulated link model abstracts away.\n");
  return seq_ms / conc_ms >= 2.0 && bus_ms > 0 && tcp_ms > 0 ? 0 : 1;
}
