// Experiment E7 — §2 Training: local DP vs secure aggregation for the
// federated learning loop. Sweeps the privacy budget and reports final
// model quality, matching the paper's rationale for running aggregation
// (and noise injection) inside the SMPC cluster.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "federation/master.h"
#include "federation/training.h"

namespace {

using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;
using mip::federation::TransferData;
using mip::federation::WorkerContext;

const std::vector<double> kTrue = {1.0, -1.5, 0.5, 2.0};

void Setup(mip::federation::MasterNode* master, int workers, int rows) {
  mip::Rng rng(1312);
  for (int w = 0; w < workers; ++w) {
    const std::string id = "w" + std::to_string(w);
    (void)master->AddWorker(id);
    Schema schema;
    for (size_t j = 0; j < kTrue.size(); ++j) {
      (void)schema.AddField({"x" + std::to_string(j), DataType::kFloat64});
    }
    (void)schema.AddField({"y", DataType::kFloat64});
    Table t = Table::Empty(schema);
    for (int i = 0; i < rows; ++i) {
      std::vector<Value> row;
      double z = 0;
      for (size_t j = 0; j < kTrue.size(); ++j) {
        const double x = rng.NextGaussian();
        z += kTrue[j] * x;
        row.push_back(Value::Double(x));
      }
      row.push_back(Value::Double(
          rng.NextDouble() < 1.0 / (1.0 + std::exp(-z)) ? 1.0 : 0.0));
      (void)t.AppendRow(row);
    }
    (void)master->LoadDataset(id, "fl", std::move(t));
  }
  (void)master->functions()->Register(
      "fl.grad",
      [](WorkerContext& ctx,
         const TransferData& args) -> mip::Result<TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<double> w,
                             args.GetVector("weights"));
        MIP_ASSIGN_OR_RETURN(Table t, ctx.db().GetTable("fl"));
        std::vector<double> grad(w.size(), 0.0);
        double loss = 0, n = 0;
        for (size_t r = 0; r < t.num_rows(); ++r) {
          double z = 0;
          for (size_t j = 0; j < w.size(); ++j) {
            z += w[j] * t.At(r, j).AsDouble();
          }
          const double y = t.At(r, w.size()).AsDouble();
          const double mu = 1.0 / (1.0 + std::exp(-z));
          for (size_t j = 0; j < w.size(); ++j) {
            grad[j] += (mu - y) * t.At(r, j).AsDouble();
          }
          loss += -(y * std::log(std::max(mu, 1e-12)) +
                    (1 - y) * std::log(std::max(1 - mu, 1e-12)));
          n += 1;
        }
        TransferData out;
        out.PutVector("grad", grad);
        out.PutScalar("loss", loss);
        out.PutScalar("n", n);
        return out;
      });
}

double WeightError(const std::vector<double>& w) {
  double err = 0;
  for (size_t j = 0; j < kTrue.size(); ++j) {
    err += (w[j] - kTrue[j]) * (w[j] - kTrue[j]);
  }
  return std::sqrt(err);
}

}  // namespace

int main() {
  std::printf("=== E7: federated training — local DP vs secure aggregation "
              "===\n");
  std::printf("6 workers x 500 examples, logistic model, 30 rounds, "
              "clip = 1.0\n\n");
  mip::federation::MasterNode master;
  Setup(&master, 6, 500);

  auto train = [&master](mip::federation::TrainingPrivacy privacy,
                         double epsilon, double* ms)
      -> mip::federation::TrainingResult {
    mip::federation::TrainingConfig config;
    config.rounds = 30;
    config.learning_rate = 2.0;
    config.privacy = privacy;
    config.epsilon = epsilon;
    config.clip_norm = 1.0;
    mip::federation::FederatedTrainer trainer(&master, config);
    auto session = master.StartSession({"fl"});
    mip::Stopwatch sw;
    auto result = trainer.Train(&session.ValueOrDie(), "fl.grad",
                                static_cast<int>(kTrue.size()));
    *ms = sw.ElapsedMillis();
    return result.ValueOrDie();
  };

  double base_ms = 0;
  const auto baseline =
      train(mip::federation::TrainingPrivacy::kNone, 0, &base_ms);
  std::printf("baseline (no privacy): loss %.4f, weight error %.3f, "
              "%.1f ms\n\n",
              baseline.history.back().loss, WeightError(baseline.weights),
              base_ms);

  std::printf("%10s | %12s %14s | %12s %14s | %10s\n", "epsilon",
              "DP loss", "DP w-error", "SA loss", "SA w-error",
              "SA ms/round");
  for (double eps : {2000.0, 500.0, 100.0, 25.0}) {
    double dp_ms = 0, sa_ms = 0;
    const auto dp =
        train(mip::federation::TrainingPrivacy::kLocalDp, eps, &dp_ms);
    const auto sa = train(
        mip::federation::TrainingPrivacy::kSecureAggregation, eps, &sa_ms);
    std::printf("%10.0f | %12.4f %14.3f | %12.4f %14.3f | %10.2f\n", eps,
                dp.history.back().loss, WeightError(dp.weights),
                sa.history.back().loss, WeightError(sa.weights),
                sa_ms / 30.0);
  }
  std::printf(
      "\nShape vs paper: at every privacy budget, secure aggregation "
      "(noise injected\nonce inside SMPC) dominates local DP (noise per "
      "worker) on model quality;\nthe crossover where DP becomes unusable "
      "appears as the budget tightens.\n");
  return 0;
}
