// Experiment E6 — the Worker-engine execution claim of §2: in-database
// analytics with vectorization and JIT compilation. google-benchmark
// comparison of the three execution engines on analytics expressions.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engine/expr.h"
#include "engine/row_interpreter.h"
#include "engine/sql_parser.h"
#include "engine/table.h"
#include "engine/vector_program.h"
#include "engine/vectorized.h"

namespace {

using mip::engine::Column;
using mip::engine::DataType;
using mip::engine::Expr;
using mip::engine::ExprPtr;
using mip::engine::Schema;
using mip::engine::Table;

Table MakeTable(size_t rows) {
  mip::Rng rng(7);
  std::vector<double> a(rows), b(rows), c(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextUniform(0.5, 2.0);
    c[i] = rng.NextGaussian(10, 3);
  }
  Schema schema;
  (void)schema.AddField({"a", DataType::kFloat64});
  (void)schema.AddField({"b", DataType::kFloat64});
  (void)schema.AddField({"c", DataType::kFloat64});
  return *Table::Make(schema, {Column::FromDoubles(a),
                               Column::FromDoubles(b),
                               Column::FromDoubles(c)});
}

// The analytics expression: an 11-operator pipeline typical of a
// standardization + score computation.
constexpr char kExpr[] =
    "sqrt(abs(a * b)) + exp(a / 10) - (c - 10) / (b + 0.5)";

ExprPtr BoundExpr(const Table& table) {
  ExprPtr e = *mip::engine::ParseExpression(kExpr);
  (void)mip::engine::BindExpr(e.get(), table.schema());
  return e;
}

void BM_RowInterpreter(benchmark::State& state) {
  const Table table = MakeTable(static_cast<size_t>(state.range(0)));
  ExprPtr expr = BoundExpr(table);
  for (auto _ : state) {
    double sink = 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      sink += (*mip::engine::EvalRow(*expr, table, r)).AsDouble();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Vectorized(benchmark::State& state) {
  const Table table = MakeTable(static_cast<size_t>(state.range(0)));
  ExprPtr expr = BoundExpr(table);
  for (auto _ : state) {
    auto col = *mip::engine::EvalVectorized(*expr, table);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_JitFused(benchmark::State& state) {
  const Table table = MakeTable(static_cast<size_t>(state.range(0)));
  ExprPtr expr = BoundExpr(table);
  const auto program = *mip::engine::VectorProgram::Compile(*expr,
                                                            table.schema());
  for (auto _ : state) {
    auto col = *program.Execute(table);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_JitCompileOnly(benchmark::State& state) {
  const Table table = MakeTable(16);
  ExprPtr expr = BoundExpr(table);
  for (auto _ : state) {
    auto program = *mip::engine::VectorProgram::Compile(*expr,
                                                        table.schema());
    benchmark::DoNotOptimize(program);
  }
}

// Ablation: batch (vector register) size. Too small = interpretation
// overhead per batch; too large = intermediates fall out of L1/L2 and the
// JIT path degenerates toward full-column vectorized execution.
void BM_JitBatchSize(benchmark::State& state) {
  const Table table = MakeTable(1 << 20);
  ExprPtr expr = BoundExpr(table);
  const auto program = *mip::engine::VectorProgram::Compile(*expr,
                                                            table.schema());
  mip::engine::VectorProgram::ExecOptions options;
  options.batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto col = *program.Execute(table, options);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}

// Ablation: intra-query parallelism (meaningful on multi-core hosts; on a
// single-core container the thread variants only show the spawn overhead).
void BM_JitThreads(benchmark::State& state) {
  const Table table = MakeTable(1 << 21);
  ExprPtr expr = BoundExpr(table);
  const auto program = *mip::engine::VectorProgram::Compile(*expr,
                                                            table.schema());
  mip::engine::VectorProgram::ExecOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto col = *program.Execute(table, options);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 21));
}

// Filter pushdown comparison: predicate evaluation to a selection vector.
void BM_FilterPredicate(benchmark::State& state) {
  const Table table = MakeTable(static_cast<size_t>(state.range(0)));
  ExprPtr pred = *mip::engine::ParseExpression("a > 0 and c < 12");
  (void)mip::engine::BindExpr(pred.get(), table.schema());
  for (auto _ : state) {
    auto sel = *mip::engine::EvalPredicate(*pred, table);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_RowInterpreter)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_Vectorized)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_JitFused)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_JitCompileOnly);
BENCHMARK(BM_JitBatchSize)->Arg(64)->Arg(512)->Arg(2048)->Arg(16384)
    ->Arg(1 << 20);
BENCHMARK(BM_JitThreads)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_FilterPredicate)->Arg(1 << 16)->Arg(1 << 20);

BENCHMARK_MAIN();
