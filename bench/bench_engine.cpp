// Experiments E6 + E13 — the Worker-engine execution claim of §2:
// in-database analytics with vectorization and JIT compilation (E6, the
// three execution engines compared on analytics expressions) and
// morsel-driven intra-query parallelism (E13, threads sweep over the
// relational kernels plus the DenseDoubles conversion micro-bench).

#include <benchmark/benchmark.h>

#include <memory>

#include "common/parallel.h"
#include "common/rng.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/row_interpreter.h"
#include "engine/sql_parser.h"
#include "engine/table.h"
#include "engine/vector_program.h"
#include "engine/vectorized.h"

namespace {

using mip::engine::AggFunc;
using mip::engine::AggregateSpec;
using mip::engine::Column;
using mip::engine::DataType;
using mip::engine::ExecContext;
using mip::engine::Expr;
using mip::engine::ExprPtr;
using mip::engine::Schema;
using mip::engine::Table;

/// Pool + context for a threads=N benchmark arg; threads<=1 means no pool
/// (pure serial morsel loop).
struct BenchExec {
  explicit BenchExec(int threads) {
    if (threads > 1) pool = std::make_unique<mip::ThreadPool>(threads);
    ctx.pool = pool.get();
  }
  std::unique_ptr<mip::ThreadPool> pool;
  ExecContext ctx;
};

Table MakeTable(size_t rows) {
  mip::Rng rng(7);
  std::vector<double> a(rows), b(rows), c(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextUniform(0.5, 2.0);
    c[i] = rng.NextGaussian(10, 3);
  }
  Schema schema;
  (void)schema.AddField({"a", DataType::kFloat64});
  (void)schema.AddField({"b", DataType::kFloat64});
  (void)schema.AddField({"c", DataType::kFloat64});
  return *Table::Make(schema, {Column::FromDoubles(a),
                               Column::FromDoubles(b),
                               Column::FromDoubles(c)});
}

// The analytics expression: an 11-operator pipeline typical of a
// standardization + score computation.
constexpr char kExpr[] =
    "sqrt(abs(a * b)) + exp(a / 10) - (c - 10) / (b + 0.5)";

ExprPtr BoundExpr(const Table& table) {
  ExprPtr e = *mip::engine::ParseExpression(kExpr);
  (void)mip::engine::BindExpr(e.get(), table.schema());
  return e;
}

void BM_RowInterpreter(benchmark::State& state) {
  const Table table = MakeTable(static_cast<size_t>(state.range(0)));
  ExprPtr expr = BoundExpr(table);
  for (auto _ : state) {
    double sink = 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      sink += (*mip::engine::EvalRow(*expr, table, r)).AsDouble();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Vectorized(benchmark::State& state) {
  const Table table = MakeTable(static_cast<size_t>(state.range(0)));
  ExprPtr expr = BoundExpr(table);
  for (auto _ : state) {
    auto col = *mip::engine::EvalVectorized(*expr, table);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_JitFused(benchmark::State& state) {
  const Table table = MakeTable(static_cast<size_t>(state.range(0)));
  ExprPtr expr = BoundExpr(table);
  const auto program = *mip::engine::VectorProgram::Compile(*expr,
                                                            table.schema());
  for (auto _ : state) {
    auto col = *program.Execute(table);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_JitCompileOnly(benchmark::State& state) {
  const Table table = MakeTable(16);
  ExprPtr expr = BoundExpr(table);
  for (auto _ : state) {
    auto program = *mip::engine::VectorProgram::Compile(*expr,
                                                        table.schema());
    benchmark::DoNotOptimize(program);
  }
}

// Ablation: batch (vector register) size. Too small = interpretation
// overhead per batch; too large = intermediates fall out of L1/L2 and the
// JIT path degenerates toward full-column vectorized execution.
void BM_JitBatchSize(benchmark::State& state) {
  const Table table = MakeTable(1 << 20);
  ExprPtr expr = BoundExpr(table);
  const auto program = *mip::engine::VectorProgram::Compile(*expr,
                                                            table.schema());
  mip::engine::VectorProgram::ExecOptions options;
  options.batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto col = *program.Execute(table, options);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}

// Ablation: intra-query parallelism (meaningful on multi-core hosts; on a
// single-core container the thread variants only show the spawn overhead).
void BM_JitThreads(benchmark::State& state) {
  const Table table = MakeTable(1 << 21);
  ExprPtr expr = BoundExpr(table);
  const auto program = *mip::engine::VectorProgram::Compile(*expr,
                                                            table.schema());
  BenchExec exec(static_cast<int>(state.range(0)));
  mip::engine::VectorProgram::ExecOptions options;
  options.exec = &exec.ctx;
  for (auto _ : state) {
    auto col = *program.Execute(table, options);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 21));
}

// --- Experiment E13: morsel-driven parallel aggregation ------------------
// Threads sweep over the hot relational operators. Morsel boundaries depend
// only on morsel_size, so every arg produces byte-identical tables; the
// sweep measures wall-clock only.

constexpr size_t kAggRows = 1 << 21;  // 2M rows, ≥ the 1M floor in E13.

/// Grouping benchmark table: g = i % 64 (int64 key), v dense double,
/// w double with every 16th row NULL (exercises validity handling).
Table MakeGroupTable(size_t rows) {
  mip::Rng rng(11);
  std::vector<int64_t> g(rows);
  std::vector<double> v(rows);
  Column w(DataType::kFloat64);
  w.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    g[i] = static_cast<int64_t>(i % 64);
    v[i] = rng.NextGaussian(5, 2);
    if (i % 16 == 3) {
      w.AppendNull();
    } else {
      w.AppendDouble(rng.NextUniform(0.0, 100.0));
    }
  }
  Schema schema;
  (void)schema.AddField({"g", DataType::kInt64});
  (void)schema.AddField({"v", DataType::kFloat64});
  (void)schema.AddField({"w", DataType::kFloat64});
  return *Table::Make(schema, {Column::FromInts(std::move(g)),
                               Column::FromDoubles(std::move(v)),
                               std::move(w)});
}

std::vector<AggregateSpec> AggSpecs(const Table& table) {
  auto bound = [&](const char* name) {
    ExprPtr e = mip::engine::Col(name);
    (void)mip::engine::BindExpr(e.get(), table.schema());
    return e;
  };
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kSum, bound("v"), "sum_v"});
  aggs.push_back({AggFunc::kAvg, bound("w"), "avg_w"});
  aggs.push_back({AggFunc::kMin, bound("v"), "min_v"});
  aggs.push_back({AggFunc::kMax, bound("w"), "max_w"});
  aggs.push_back({AggFunc::kStddevSamp, bound("v"), "sd_v"});
  return aggs;
}

void BM_AggregateThreads(benchmark::State& state) {
  const Table table = MakeGroupTable(kAggRows);
  const std::vector<AggregateSpec> aggs = AggSpecs(table);
  BenchExec exec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = *mip::engine::AggregateAll(table, aggs, nullptr, &exec.ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * kAggRows);
}

void BM_GroupByThreads(benchmark::State& state) {
  const Table table = MakeGroupTable(kAggRows);
  const std::vector<AggregateSpec> aggs = AggSpecs(table);
  ExprPtr key = mip::engine::Col("g");
  (void)mip::engine::BindExpr(key.get(), table.schema());
  BenchExec exec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = *mip::engine::GroupByAggregate(table, {key}, {"g"}, aggs,
                                              nullptr, &exec.ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * kAggRows);
}

void BM_FilterThreads(benchmark::State& state) {
  const Table table = MakeGroupTable(kAggRows);
  ExprPtr pred = *mip::engine::ParseExpression("v > 5 and w < 80");
  (void)mip::engine::BindExpr(pred.get(), table.schema());
  BenchExec exec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = *mip::engine::Filter(table, *pred, nullptr, &exec.ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * kAggRows);
}

// --- DenseDoubles conversion micro-bench ---------------------------------
// The boxed reference path (per-element AsDoubleAt: validity probe + type
// switch per value) vs the typed fast path (one typed pass + word-level
// validity expansion) that the vectorized kernels now use.

void BM_DenseDoublesBoxed(benchmark::State& state) {
  const Table table = MakeGroupTable(static_cast<size_t>(state.range(0)));
  const Column& col = table.column(2);  // nullable double
  for (auto _ : state) {
    std::vector<double> out(col.length());
    for (size_t i = 0; i < col.length(); ++i) out[i] = col.AsDoubleAt(i);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_DenseDoublesTyped(benchmark::State& state) {
  const Table table = MakeGroupTable(static_cast<size_t>(state.range(0)));
  const Column& col = table.column(2);
  for (auto _ : state) {
    auto out = mip::engine::DenseDoubles(col);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_DenseDoublesBoxedInt(benchmark::State& state) {
  const Table table = MakeGroupTable(static_cast<size_t>(state.range(0)));
  const Column& col = table.column(0);  // all-valid int64
  for (auto _ : state) {
    std::vector<double> out(col.length());
    for (size_t i = 0; i < col.length(); ++i) out[i] = col.AsDoubleAt(i);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_DenseDoublesTypedInt(benchmark::State& state) {
  const Table table = MakeGroupTable(static_cast<size_t>(state.range(0)));
  const Column& col = table.column(0);
  for (auto _ : state) {
    auto out = mip::engine::DenseDoubles(col);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Filter pushdown comparison: predicate evaluation to a selection vector.
void BM_FilterPredicate(benchmark::State& state) {
  const Table table = MakeTable(static_cast<size_t>(state.range(0)));
  ExprPtr pred = *mip::engine::ParseExpression("a > 0 and c < 12");
  (void)mip::engine::BindExpr(pred.get(), table.schema());
  for (auto _ : state) {
    auto sel = *mip::engine::EvalPredicate(*pred, table);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_RowInterpreter)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_Vectorized)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_JitFused)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_JitCompileOnly);
BENCHMARK(BM_JitBatchSize)->Arg(64)->Arg(512)->Arg(2048)->Arg(16384)
    ->Arg(1 << 20);
BENCHMARK(BM_JitThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_FilterPredicate)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_AggregateThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_GroupByThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_FilterThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_DenseDoublesBoxed)->Arg(1 << 20);
BENCHMARK(BM_DenseDoublesTyped)->Arg(1 << 20);
BENCHMARK(BM_DenseDoublesBoxedInt)->Arg(1 << 20);
BENCHMARK(BM_DenseDoublesTypedInt)->Arg(1 << 20);

BENCHMARK_MAIN();
