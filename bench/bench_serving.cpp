// Experiment E16 — multi-tenant serving layer: gateway result cache under
// concurrent load.
//
// A 4-hospital federated cohort sits behind a Gateway served over real TCP
// (the epoll server). The bench measures, with 8 concurrent tenants:
//   * cold latency — every query planned and executed through the federated
//     merge view (cache misses);
//   * cached latency — the same queries answered from the fingerprint-keyed
//     LRU (hits), which must be byte-identical to the cold replies;
//   * QPS for the cached phase.
//
// Acceptance: cached p50 at least 10x faster than cold p50, and every
// cached reply byte-identical to its cold counterpart. Results go to
// BENCH_serving.json for the CI smoke step.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/table.h"
#include "federation/gateway.h"
#include "federation/master.h"
#include "net/tcp_transport.h"

namespace {

using mip::BufferWriter;
using mip::LatencyHistogram;
using mip::Rng;
using mip::Stopwatch;
using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;

constexpr int kWorkers = 4;
constexpr size_t kRowsPerSite = 60000;
constexpr int kDistinctQueries = 12;
constexpr int kThreads = 8;
constexpr int kCachedRoundsPerThread = 25;

Table MakeCohort(int site) {
  Schema schema;
  (void)schema.AddField({"age", DataType::kInt64});
  (void)schema.AddField({"score", DataType::kFloat64});
  Rng rng(0xE16 + static_cast<uint64_t>(site));
  Table t = Table::Empty(schema);
  for (size_t i = 0; i < kRowsPerSite; ++i) {
    (void)t.AppendRow(
        {Value::Int(static_cast<int64_t>(40 + rng.NextBounded(50))),
         Value::Double(static_cast<double>(rng.NextBounded(1000)) * 0.1)});
  }
  return t;
}

std::string QuerySql(int i) {
  // Distinct predicates -> distinct plan fingerprints -> distinct cache
  // entries; identical re-issues hit.
  return "SELECT count(*) AS n, avg(score) AS m FROM cohort_federated "
         "WHERE age > " + std::to_string(40 + i);
}

}  // namespace

int main() {
  std::printf("=== E16: gateway serving — cold vs cached over TCP ===\n");
  std::printf("%d sites x %zu rows, %d distinct queries, %d tenants\n\n",
              kWorkers, kRowsPerSite, kDistinctQueries, kThreads);

  // Federation: in-process workers on the bus; the gateway fronts the
  // Master's engine and serves tenants over real TCP.
  mip::federation::MasterNode master;
  for (int w = 0; w < kWorkers; ++w) {
    const std::string id = "hospital_" + std::to_string(w);
    if (!master.AddWorker(id).ok() ||
        !master.LoadDataset(id, "cohort", MakeCohort(w)).ok()) {
      std::printf("setup failed\n");
      return 1;
    }
  }
  auto view = master.CreateFederatedView("cohort");
  if (!view.ok()) {
    std::printf("view failed: %s\n", view.status().ToString().c_str());
    return 1;
  }

  mip::federation::GatewayOptions gw_options;
  gw_options.max_in_flight = 256;
  gw_options.per_tenant_in_flight = 64;
  mip::federation::Gateway gateway(&master.local_db(), gw_options);
  mip::net::TcpTransport server;
  if (!server.Listen(0).ok() || !gateway.Attach(&server).ok()) {
    std::printf("listen failed\n");
    return 1;
  }

  mip::net::TcpTransport client;
  client.AddPeer("gateway", "127.0.0.1", server.port());
  auto run_query = [&](int i, const std::string& tenant)
      -> mip::Result<std::vector<uint8_t>> {
    BufferWriter writer;
    writer.WriteString(QuerySql(i));
    return client.Send(mip::net::Envelope{tenant, "gateway", "run_sql", "",
                                          writer.TakeBytes()});
  };

  // --- Cold phase: every distinct query once, per-request latency --------
  LatencyHistogram cold;
  std::vector<std::vector<uint8_t>> cold_replies(kDistinctQueries);
  for (int i = 0; i < kDistinctQueries; ++i) {
    Stopwatch sw;
    auto reply = run_query(i, "warmup");
    if (!reply.ok()) {
      std::printf("cold query failed: %s\n",
                  reply.status().ToString().c_str());
      return 1;
    }
    cold.Record(sw.ElapsedMillis());
    cold_replies[i] = reply.ValueOrDie();
  }

  // --- Cached phase: 8 tenants re-issue the same queries concurrently ----
  LatencyHistogram cached;
  std::mutex cached_mu;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  Stopwatch wall;
  std::vector<std::thread> tenants;
  for (int t = 0; t < kThreads; ++t) {
    tenants.emplace_back([&, t] {
      LatencyHistogram local;
      for (int round = 0; round < kCachedRoundsPerThread; ++round) {
        for (int i = 0; i < kDistinctQueries; ++i) {
          Stopwatch sw;
          auto reply = run_query(i, "tenant_" + std::to_string(t));
          if (!reply.ok()) {
            failures.fetch_add(1);
            continue;
          }
          local.Record(sw.ElapsedMillis());
          if (reply.ValueOrDie() != cold_replies[i]) mismatches.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(cached_mu);
      cached.Merge(local);
    });
  }
  for (auto& th : tenants) th.join();
  const double wall_ms = wall.ElapsedMillis();
  const double qps = cached.count() > 0 && wall_ms > 0
                         ? 1000.0 * static_cast<double>(cached.count()) /
                               wall_ms
                         : 0.0;

  const auto cache_stats = gateway.cache().stats();
  std::printf("cold:   %s\n", cold.Summary().c_str());
  std::printf("cached: %s\n", cached.Summary().c_str());
  std::printf("cached phase: %llu requests in %.1f ms -> %.0f QPS\n",
              static_cast<unsigned long long>(cached.count()), wall_ms, qps);
  std::printf("cache: hits=%llu misses=%llu coalesced=%llu\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.coalesced));

  const double speedup = cached.Quantile(0.5) > 0.0
                             ? cold.Quantile(0.5) / cached.Quantile(0.5)
                             : 0.0;
  const bool identical = mismatches.load() == 0 && failures.load() == 0;
  const bool fast_enough = speedup >= 10.0;
  std::printf("\ncached p50 speedup: %s (need >= 10x, got %.1fx)\n",
              fast_enough ? "PASS" : "FAIL", speedup);
  std::printf("byte-identical:     %s (%d mismatches, %d failures)\n",
              identical ? "PASS" : "FAIL", mismatches.load(),
              failures.load());

  if (std::FILE* f = std::fopen("BENCH_serving.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"experiment\": \"E16\",\n"
        "  \"sites\": %d, \"rows_per_site\": %zu, \"tenants\": %d,\n"
        "  \"cold\": {\"n\": %llu, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"p999_ms\": %.4f},\n"
        "  \"cached\": {\"n\": %llu, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"p999_ms\": %.4f, \"qps\": %.0f},\n"
        "  \"speedup_p50\": %.2f,\n"
        "  \"byte_identical\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        kWorkers, kRowsPerSite, kThreads,
        static_cast<unsigned long long>(cold.count()), cold.Quantile(0.5),
        cold.Quantile(0.99), cold.Quantile(0.999),
        static_cast<unsigned long long>(cached.count()),
        cached.Quantile(0.5), cached.Quantile(0.99), cached.Quantile(0.999),
        qps, speedup, identical ? "true" : "false",
        identical && fast_enough ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_serving.json\n");
  }

  client.Shutdown();
  server.Shutdown();
  return identical && fast_enough ? 0 : 1;
}
